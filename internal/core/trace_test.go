package core

import (
	"math"
	"testing"

	"dclue/internal/trace"
)

// TestTraceNonPerturbing is the observability layer's central guarantee: a
// fully-traced run (every transaction sampled, events and gauges retained)
// follows the exact same trajectory as an untraced run. Everything outside
// the breakdown — every counter, percentile and timeline point — must hash
// identically.
func TestTraceNonPerturbing(t *testing.T) {
	p := quickParams(2)
	base := mustRun(t, p)

	col := trace.NewCollector(1)
	col.KeepEvents(0)
	p.Trace = col
	traced := mustRun(t, p)

	if got, want := traced.FingerprintSansTrace(), base.Fingerprint(); got != want {
		t.Fatalf("traced run diverged: fingerprint %x, untraced %x\ntraced:  %vuntraced: %v",
			got, want, traced, base)
	}
	if traced.Breakdown.Sampled == 0 {
		t.Fatal("traced run recorded no spans")
	}
}

// TestTracePhaseSum checks the decomposition's accounting identity: the six
// phase means sum to the span total exactly, and — at sampling stride 1,
// where the sampled population is every measured transaction — the span
// total matches the independently tallied mean response time.
func TestTracePhaseSum(t *testing.T) {
	p := quickParams(2)
	p.Trace = trace.NewCollector(1)
	m := mustRun(t, p)

	b := m.Breakdown
	if b.Sampled == 0 {
		t.Fatal("no spans recorded")
	}
	if diff := math.Abs(b.Sum() - b.TotalMs); diff > 1e-6*b.TotalMs+1e-9 {
		t.Fatalf("phases sum to %.6fms, span total %.6fms", b.Sum(), b.TotalMs)
	}
	if diff := math.Abs(b.TotalMs - m.RespTimeMs); diff > 0.05*m.RespTimeMs {
		t.Fatalf("span total %.3fms vs response time %.3fms: off by more than 5%%",
			b.TotalMs, m.RespTimeMs)
	}
	// A healthy warm run does real work in every major phase.
	if b.CPUMs <= 0 || b.FabricMs <= 0 {
		t.Fatalf("degenerate breakdown: %+v", b)
	}
}

// TestTraceSampling checks that a stride-n collector records roughly 1/n of
// the transactions a stride-1 collector does, and that percentiles (which do
// not depend on tracing) are unaffected.
func TestTraceSampling(t *testing.T) {
	p := quickParams(1)
	p.Trace = trace.NewCollector(1)
	full := mustRun(t, p)

	p.Trace = trace.NewCollector(8)
	sampled := mustRun(t, p)

	if full.Breakdown.Sampled == 0 || sampled.Breakdown.Sampled == 0 {
		t.Fatalf("no spans: full=%d sampled=%d", full.Breakdown.Sampled, sampled.Breakdown.Sampled)
	}
	ratio := float64(full.Breakdown.Sampled) / float64(sampled.Breakdown.Sampled)
	if ratio < 6 || ratio > 10 {
		t.Fatalf("stride-8 sampling kept %d of %d spans (ratio %.1f, want ~8)",
			sampled.Breakdown.Sampled, full.Breakdown.Sampled, ratio)
	}
	if full.FingerprintSansTrace() != sampled.FingerprintSansTrace() {
		t.Fatal("sampling stride changed the simulated trajectory")
	}
	if full.RespTimeP95Ms != sampled.RespTimeP95Ms {
		t.Fatal("always-on percentiles differ between sampling strides")
	}
}

// TestTraceGaugesAndEvents checks that an event-retaining run collects span
// segments and queue gauges suitable for export.
func TestTraceGaugesAndEvents(t *testing.T) {
	p := quickParams(2)
	col := trace.NewCollector(4)
	col.KeepEvents(0)
	p.Trace = col
	m := mustRun(t, p)

	runs := col.Runs()
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	r := runs[0]
	if r.Sampled() == 0 {
		t.Fatal("no spans sampled")
	}
	bytes, pkts := r.PeakGauge()
	if bytes <= 0 || pkts <= 0 {
		t.Fatalf("gauge sampler saw no queue occupancy (bytes=%d pkts=%d)", bytes, pkts)
	}
	if m.Breakdown.PeakQueueBytes != bytes || m.Breakdown.PeakQueuePkts != pkts {
		t.Fatal("metrics breakdown does not reflect the run's peak gauges")
	}
	if r.Label() == "" {
		t.Fatal("run has no label")
	}
}
