package core

import (
	"testing"

	"dclue/internal/sim"
)

// faultedParams is a 2-node, 2-LATA cluster with a mid-measurement
// link-down on node 1's access pair followed by burst loss on LATA 0's
// uplink — the acceptance scenario for the fault subsystem.
func faultedParams() Params {
	p := quickParams(2)
	p.NodesPerLata = 1
	p.FaultSpec = "linkdown:node:1@60+10;loss:interlata:0@80+15=0.3"
	p.TimelineBucket = 5 * sim.Second
	return p
}

// TestFaultedRunCompletesAndRecovers: the scenario must complete (no hang),
// surface the faults in the retry/timeout metrics, and the throughput
// timeline must recover after the last fault window closes.
func TestFaultedRunCompletesAndRecovers(t *testing.T) {
	p := faultedParams()
	m := mustRun(t, p)

	if m.FaultDrops == 0 {
		t.Fatal("no packets recorded lost to the injected faults")
	}
	if m.TpmC <= 0 {
		t.Fatalf("no throughput under faults: %+v", m)
	}
	// The protocol layer must have noticed: bounded waits expired and/or
	// transactions took the release-and-retry path.
	if m.FetchTimeouts == 0 && m.Retries == 0 {
		t.Fatalf("faults invisible to recovery metrics: %s", m)
	}

	// Recovery: compare the mean rate while both faults are over (t>100s)
	// to the rate inside the fault windows (60..95s). The healthy tail must
	// beat the faulted stretch.
	meanRate := func(lo, hi float64) float64 {
		var sum float64
		var n int
		for _, pt := range m.Timeline {
			s := pt.T.Seconds()
			if s > lo && s <= hi {
				sum += pt.TxnRate
				n++
			}
		}
		if n == 0 {
			t.Fatalf("no timeline points in (%g, %g]; timeline: %v", lo, hi, m.Timeline)
		}
		return sum / float64(n)
	}
	faulted := meanRate(60, 95)
	recovered := meanRate(110, 160)
	if recovered <= faulted {
		t.Fatalf("no recovery: %.1f txn/s after faults vs %.1f during (timeline %v)",
			recovered, faulted, m.Timeline)
	}
	if recovered <= 0 {
		t.Fatal("cluster dead after fault windows closed")
	}
}

// TestFaultedRunsAreDeterministic (regression): same seed + same schedule
// must produce byte-identical metrics, timeline included.
func TestFaultedRunsAreDeterministic(t *testing.T) {
	p := faultedParams()
	a := mustRun(t, p)
	b := mustRun(t, p)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same-seed faulted runs diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestBadFaultSpecsRejectedAtConstruction: schedule errors come back from
// New as errors, not panics or silent misconfiguration.
func TestBadFaultSpecsRejectedAtConstruction(t *testing.T) {
	for _, spec := range []string{
		"explode:node:0@1+1",  // unknown kind
		"linkdown:node:9@1+1", // unknown target (2-node cluster)
		"linkdown:interlata:7@1+1",
		"loss:node:0@1+1", // missing severity
	} {
		p := quickParams(2)
		p.NodesPerLata = 1
		p.FaultSpec = spec
		c, err := New(p)
		if err == nil {
			c.Sim.Shutdown()
			t.Errorf("FaultSpec %q accepted, want construction error", spec)
		}
	}
}

// TestHealthyRunUnchangedByFaultMachinery: with no schedule, the fault
// plumbing must be invisible — identical metrics to the pre-fault model.
func TestHealthyRunUnchangedByFaultMachinery(t *testing.T) {
	p := quickParams(1)
	a := mustRun(t, p)
	if a.FaultDrops+a.CorruptDrops+a.FetchTimeouts+a.FetchFails+a.IscsiTimeouts+
		a.DiskErrors+a.DiskFailures > 0 {
		t.Fatalf("healthy run reports fault activity: %s", a)
	}
}
