package core

import (
	"dclue/internal/db"
	"dclue/internal/iscsi"
	"dclue/internal/netsim"
	"dclue/internal/tcp"
	"dclue/internal/telemetry"
)

// ipcEnvelope frames a GCS message on the IPC TCP connection.
type ipcEnvelope struct {
	from int
	msg  db.Msg
}

// hbEnvelope frames a membership heartbeat on the same IPC connection: a
// small real packet, so failure-detection latency is a property of the
// fabric (load, loss, RTO dynamics), not a constant.
type hbEnvelope struct {
	from int
}

// hbBytes is the heartbeat wire size.
const hbBytes = 64

// ipcTransport implements db.Transport over the per-pair IPC connections.
type ipcTransport struct {
	cluster *Cluster
	self    int
	conns   [64]*tcp.Conn // indexed by peer node (clusters are small)
}

// Self returns this node's index.
func (t *ipcTransport) Self() int { return t.self }

// Send ships a GCS message to node `to` over the IPC connection. All DBMS
// traffic is best-effort (§3.4); QoS experiments prioritize the cross
// traffic, never the DBMS.
func (t *ipcTransport) Send(to int, m db.Msg, size int, data bool) {
	if to == t.self {
		// Local shortcut (can happen for the central log node).
		self := t.self
		t.cluster.Sim.After(0, func() {
			t.cluster.nodes[self].dbn.GCS.HandleMessage(self, m)
		})
		return
	}
	conn := t.conns[to]
	if conn == nil {
		panic("core: IPC send before mesh established")
	}
	conn.Enqueue(ipcEnvelope{from: t.self, msg: m}, size)
}

// sendHeartbeat ships one membership heartbeat. Unlike Send it tolerates a
// missing or torn-down connection (Enqueue on a closed connection is a
// no-op): heartbeats to an unreachable peer simply stop arriving, which is
// exactly the signal the lease monitor consumes.
func (t *ipcTransport) sendHeartbeat(to int) {
	if conn := t.conns[to]; conn != nil {
		// Heartbeats ride the IPC connection but attribute as their own
		// traffic class, so telemetry can separate liveness chatter from
		// cache-fusion messaging on the same wire.
		conn.EnqueueTC(hbEnvelope{from: t.self}, hbBytes, telemetry.ClassHeartbeat)
	}
}

// abortPeer tears down the connection to a fenced peer locally: queued and
// in-flight segments are abandoned instead of retransmitting into a dead
// link for the rest of the run. The slot keeps the stale pointer (Enqueue on
// it no-ops) until the peer rejoins and a fresh dial replaces it.
func (t *ipcTransport) abortPeer(peer int) {
	if conn := t.conns[peer]; conn != nil {
		conn.Abort()
	}
}

// bindIPC wires an established dialer-side IPC connection into both ends'
// transports.
func (c *Cluster) bindIPC(i, j int, conn *tcp.Conn) {
	c.nodes[i].transport.conns[j] = conn
	c.hookIPC(i, conn)
	// The acceptor side hooks its direction in acceptIPC; conn here is the
	// dialer's endpoint only.
}

// acceptIPC registers the acceptor-side endpoint of an IPC connection.
func (c *Cluster) acceptIPC(self int, conn *tcp.Conn) {
	peer := int(conn.Remote())
	c.nodes[self].transport.conns[peer] = conn
	c.hookIPC(self, conn)
}

// hookIPC delivers inbound envelopes to the node's GCS and heartbeats to
// its membership service. The node's engine is resolved at delivery time,
// not hook time: after a crash-restart the same connection-accept closures
// must reach the rebuilt engine, not a dead one.
func (c *Cluster) hookIPC(self int, conn *tcp.Conn) {
	conn.SetOnMessage(func(m tcp.Message) {
		switch env := m.Meta.(type) {
		case hbEnvelope:
			if c.rec != nil {
				c.rec.observeHeartbeat(self, env.from)
			}
		case ipcEnvelope:
			c.nodes[self].dbn.GCS.HandleMessage(env.from, env.msg)
		}
	})
}

// bindISCSI wires the dialer side of the per-pair storage connection:
// node i's initiator targets j, and i's target serves j's commands arriving
// on the same connection.
func (c *Cluster) bindISCSI(i, j int, conn *tcp.Conn) {
	c.nodes[i].initiator.RegisterConn(j, conn)
	iscsi.Demux(conn, c.nodes[i].target, c.nodes[i].initiator)
}

// acceptISCSI wires the acceptor side.
func (c *Cluster) acceptISCSI(self int, conn *tcp.Conn) {
	peer := int(conn.Remote())
	c.nodes[self].initiator.RegisterConn(peer, conn)
	iscsi.Demux(conn, c.nodes[self].target, c.nodes[self].initiator)
}

// nodeAddrOf is a tiny helper for readability elsewhere.
func nodeAddrOf(i int) netsim.Addr { return netsim.NodeAddr(i) }
