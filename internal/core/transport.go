package core

import (
	"dclue/internal/db"
	"dclue/internal/iscsi"
	"dclue/internal/netsim"
	"dclue/internal/tcp"
)

// ipcEnvelope frames a GCS message on the IPC TCP connection.
type ipcEnvelope struct {
	from int
	msg  db.Msg
}

// ipcTransport implements db.Transport over the per-pair IPC connections.
type ipcTransport struct {
	cluster *Cluster
	self    int
	conns   [64]*tcp.Conn // indexed by peer node (clusters are small)
}

// Self returns this node's index.
func (t *ipcTransport) Self() int { return t.self }

// Send ships a GCS message to node `to` over the IPC connection. All DBMS
// traffic is best-effort (§3.4); QoS experiments prioritize the cross
// traffic, never the DBMS.
func (t *ipcTransport) Send(to int, m db.Msg, size int, data bool) {
	if to == t.self {
		// Local shortcut (can happen for the central log node).
		self := t.self
		t.cluster.Sim.After(0, func() {
			t.cluster.nodes[self].dbn.GCS.HandleMessage(self, m)
		})
		return
	}
	conn := t.conns[to]
	if conn == nil {
		panic("core: IPC send before mesh established")
	}
	conn.Enqueue(ipcEnvelope{from: t.self, msg: m}, size)
}

// bindIPC wires an established dialer-side IPC connection into both ends'
// transports.
func (c *Cluster) bindIPC(i, j int, conn *tcp.Conn) {
	c.nodes[i].transport.conns[j] = conn
	c.hookIPC(i, conn)
	// The acceptor side hooks its direction in acceptIPC; conn here is the
	// dialer's endpoint only.
}

// acceptIPC registers the acceptor-side endpoint of an IPC connection.
func (c *Cluster) acceptIPC(self int, conn *tcp.Conn) {
	peer := int(conn.Remote())
	c.nodes[self].transport.conns[peer] = conn
	c.hookIPC(self, conn)
}

// hookIPC delivers inbound envelopes to the node's GCS.
func (c *Cluster) hookIPC(self int, conn *tcp.Conn) {
	gcs := c.nodes[self].dbn.GCS
	conn.SetOnMessage(func(m tcp.Message) {
		env := m.Meta.(ipcEnvelope)
		gcs.HandleMessage(env.from, env.msg)
	})
}

// bindISCSI wires the dialer side of the per-pair storage connection:
// node i's initiator targets j, and i's target serves j's commands arriving
// on the same connection.
func (c *Cluster) bindISCSI(i, j int, conn *tcp.Conn) {
	c.nodes[i].initiator.RegisterConn(j, conn)
	iscsi.Demux(conn, c.nodes[i].target, c.nodes[i].initiator)
}

// acceptISCSI wires the acceptor side.
func (c *Cluster) acceptISCSI(self int, conn *tcp.Conn) {
	peer := int(conn.Remote())
	c.nodes[self].initiator.RegisterConn(peer, conn)
	iscsi.Demux(conn, c.nodes[self].target, c.nodes[self].initiator)
}

// nodeAddrOf is a tiny helper for readability elsewhere.
func nodeAddrOf(i int) netsim.Addr { return netsim.NodeAddr(i) }
