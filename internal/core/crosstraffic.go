package core

import (
	"dclue/internal/ftp"
	"dclue/internal/netsim"
	"dclue/internal/tcp"
)

// ftpApp glues the cross-traffic endpoints (Fig 1's "extra client" and
// "extra server", placed in different LATAs so their flows cross the
// inter-LATA links) to the FTP generator.
type ftpApp struct {
	gen *ftp.Generator
	srv *ftp.Server
}

// newFTPApp builds the extra hosts. Their compute is not modeled (the
// paper studies their *traffic*), so they get instant processors; the
// offered load parameter is given unscaled and divided by the system scale
// like every other rate.
func newFTPApp(c *Cluster) *ftpApp {
	p := c.P
	class := netsim.ClassBestEffort
	if p.CrossTrafficPriority {
		class = netsim.ClassAF21
	}
	cliStack := c.Dom.NewStack(netsim.AddrExtraClient, tcp.InstantProcessor{}, p.tcpCosts())
	srvStack := c.Dom.NewStack(netsim.AddrExtraServer, tcp.InstantProcessor{}, p.tcpCosts())
	srv := ftp.NewServer(srvStack)
	gen := ftp.NewGenerator(c.Sim, cliStack, netsim.AddrExtraServer, class,
		p.CrossTrafficBps/p.Scale, p.Seed)
	return &ftpApp{gen: gen, srv: srv}
}

func (f *ftpApp) start()      { f.gen.Start() }
func (f *ftpApp) resetStats() { f.gen.ResetStats() }
