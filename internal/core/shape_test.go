package core

// Shape tests: system-level assertions that the model reproduces the
// *direction* of every effect the paper reports, on small configurations.
// They complement the experiments package, which produces the full sweeps.

import (
	"testing"

	"dclue/internal/sim"
)

// shapeParams is a 4-node config big enough for the effects to show.
func shapeParams() Params {
	p := DefaultParams(4)
	p.Warehouses = 6 * 4
	p.Warmup = 60 * sim.Second
	p.Measure = 150 * sim.Second
	return p
}

func TestShapeSWTCPSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shape test")
	}
	p := shapeParams()
	p.Affinity = 0.8
	hw := mustRun(t, p)
	p.SWTCP = true
	p.SWiSCSI = true
	sw := mustRun(t, p)
	// §3.3: at affinity 0.8, HW TCP gives roughly twice the throughput of
	// SW TCP. At this fixed sub-capacity load the effect shows as CPU and
	// response-time inflation at least — and tpmC must not be higher.
	if sw.TpmC > hw.TpmC*1.05 {
		t.Fatalf("SW TCP tpmC %.0f above HW %.0f", sw.TpmC, hw.TpmC)
	}
	if sw.CPUUtil <= hw.CPUUtil {
		t.Fatalf("SW TCP CPU %.2f not above HW %.2f", sw.CPUUtil, hw.CPUUtil)
	}
}

func TestShapeOffloadIrrelevantAtAffinityOne(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shape test")
	}
	p := shapeParams()
	p.Affinity = 1.0
	hw := mustRun(t, p)
	p.SWTCP = true
	p.SWiSCSI = true
	sw := mustRun(t, p)
	// §3.3: with affinity 1.0 there is almost no IPC or iSCSI traffic, so
	// the implementations barely differ (only client-server TCP remains).
	if hw.TpmC == 0 {
		t.Fatal("no throughput")
	}
	ratio := sw.TpmC / hw.TpmC
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("offload changed affinity-1.0 throughput by %.0f%%", (1-ratio)*100)
	}
}

func TestShapeLatencyMildlyHurts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shape test")
	}
	p := shapeParams()
	p.Nodes = 4
	p.NodesPerLata = 2 // two LATAs so inter-LATA latency matters
	base := mustRun(t, p)
	q := p
	q.ExtraLatency = sim.Time(1.0 / 2 * q.Scale * float64(sim.Millisecond)) // +1ms RTT
	slow := mustRun(t, q)
	if base.TpmC == 0 {
		t.Fatal("no throughput")
	}
	ratio := slow.TpmC / base.TpmC
	// §3.3: ~3.4% drop at +1ms; the model must show a small drop, never a
	// collapse and never a gain beyond noise.
	if ratio < 0.80 {
		t.Fatalf("+1ms RTT collapsed throughput to %.0f%%", ratio*100)
	}
	if ratio > 1.06 {
		t.Fatalf("+1ms RTT increased throughput to %.0f%%", ratio*100)
	}
	if slow.RespTimeMs <= base.RespTimeMs {
		t.Fatalf("latency did not raise response time (%.0f vs %.0f ms)",
			slow.RespTimeMs, base.RespTimeMs)
	}
}

func TestShapePriorityCrossTrafficWorseThanBestEffort(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shape test")
	}
	p := shapeParams()
	p.NodesPerLata = 2
	p.LowComputation = true
	base := mustRun(t, p)

	be := p
	be.CrossTrafficBps = 400e6
	mBE := mustRun(t, be)

	prio := be
	prio.CrossTrafficPriority = true
	mPrio := mustRun(t, prio)

	if base.TpmC == 0 {
		t.Fatal("no throughput")
	}
	// §3.4: priority cross traffic hurts decidedly more than best-effort.
	if mPrio.TpmC >= mBE.TpmC {
		t.Fatalf("priority FTP (%.0f) not worse than best-effort (%.0f)",
			mPrio.TpmC, mBE.TpmC)
	}
	// And it inflates DBMS message delay (threads barely move at this tiny
	// configuration; the full-size effect is exercised by Fig 14/15).
	if mPrio.MsgDelayMs <= base.MsgDelayMs {
		t.Fatalf("priority FTP did not raise DBMS packet delay (%.2f vs %.2f)",
			mPrio.MsgDelayMs, base.MsgDelayMs)
	}
	if mPrio.ActiveThreads < base.ActiveThreads*0.9 {
		t.Fatalf("priority FTP reduced active threads (%.1f vs %.1f)",
			mPrio.ActiveThreads, base.ActiveThreads)
	}
}

func TestShapeCentralLoggingCostsThroughputAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shape test")
	}
	p := DefaultParams(8)
	p.Warehouses = 6 * 8
	p.Warmup = 60 * sim.Second
	p.Measure = 150 * sim.Second
	local := mustRun(t, p)
	p.CentralLogging = true
	central := mustRun(t, p)
	// §3.2: centralized logging is consistently lower (or at minimum pays
	// visible response-time cost at this scale).
	if central.TpmC > local.TpmC*1.02 {
		t.Fatalf("central logging tpmC %.0f above local %.0f", central.TpmC, local.TpmC)
	}
	if central.RespTimeMs <= local.RespTimeMs {
		t.Fatalf("central logging did not raise response time (%.0f vs %.0f ms)",
			central.RespTimeMs, local.RespTimeMs)
	}
}

func TestShapeLowComputationFasterButLatencySensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shape test")
	}
	p := shapeParams()
	normal := mustRun(t, p)
	p.LowComputation = true
	low := mustRun(t, p)
	// Quarter the computation: the same offered load consumes far less CPU.
	if low.CPUUtil >= normal.CPUUtil {
		t.Fatalf("low computation did not reduce CPU (%.2f vs %.2f)",
			low.CPUUtil, normal.CPUUtil)
	}
	if low.TpmC < normal.TpmC*0.9 {
		t.Fatalf("low computation lost throughput at fixed load (%.0f vs %.0f)",
			low.TpmC, normal.TpmC)
	}
}
