package core

import (
	"testing"

	"dclue/internal/sim"
	"dclue/internal/tpcc"
)

// mustNew builds a cluster, failing the test on a construction error.
func mustNew(t testing.TB, p Params) *Cluster {
	t.Helper()
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runOK runs a cluster to completion, failing the test on any run error.
func runOK(t testing.TB, c *Cluster) Metrics {
	t.Helper()
	m, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// mustRun is mustNew + runOK.
func mustRun(t testing.TB, p Params) Metrics {
	t.Helper()
	return runOK(t, mustNew(t, p))
}

// quickParams returns a small, fast configuration for tests.
func quickParams(nodes int) Params {
	p := DefaultParams(nodes)
	p.Warehouses = 4 * nodes
	p.CustomersPerDist = 30
	p.Items = 200
	p.TerminalsPerWarehouse = 10
	p.Warmup = 40 * sim.Second
	p.Measure = 120 * sim.Second
	return p
}

func TestSingleNodeCommitsTransactions(t *testing.T) {
	c := mustNew(t, quickParams(1))
	m := runOK(t, c)
	if m.TpmC <= 0 {
		t.Fatalf("no new-orders committed: %+v", m)
	}
	if m.CtlMsgsPerTxn > 1 {
		t.Fatalf("single node sent %v IPC ctl msgs/txn, want ~0", m.CtlMsgsPerTxn)
	}
	if m.Failures > 0 {
		t.Fatalf("%d failed transactions", m.Failures)
	}
}

func TestTwoNodeClusterRuns(t *testing.T) {
	p := quickParams(2)
	p.Affinity = 0.8
	c := mustNew(t, p)
	m := runOK(t, c)
	if m.TpmC <= 0 {
		t.Fatal("no throughput")
	}
	if m.CtlMsgsPerTxn == 0 {
		t.Fatal("no IPC at affinity 0.8 with 2 nodes")
	}
	if m.ConnResets > 0 {
		t.Fatalf("%d connection resets in a healthy run", m.ConnResets)
	}
}

func TestAffinityOneMeansNoIPC(t *testing.T) {
	p := quickParams(2)
	p.Affinity = 1.0
	c := mustNew(t, p)
	m := runOK(t, c)
	// §3.3: at affinity 1.0 there is almost no IPC traffic (only the odd
	// shared item-table block).
	if m.CtlMsgsPerTxn > 2 {
		t.Fatalf("ctl msgs/txn %v at affinity 1.0, want ~0", m.CtlMsgsPerTxn)
	}
	if m.DataMsgsPerTxn > 1 {
		t.Fatalf("data msgs/txn %v at affinity 1.0", m.DataMsgsPerTxn)
	}
}

func TestLowerAffinityMoreIPC(t *testing.T) {
	run := func(aff float64) Metrics {
		p := quickParams(2)
		p.Affinity = aff
		return mustRun(t, p)
	}
	high := run(0.9)
	low := run(0.2)
	if low.CtlMsgsPerTxn <= high.CtlMsgsPerTxn {
		t.Fatalf("ctl msgs/txn did not rise as affinity fell: %.2f (0.9) vs %.2f (0.2)",
			high.CtlMsgsPerTxn, low.CtlMsgsPerTxn)
	}
}

func TestDeterministicRuns(t *testing.T) {
	p := quickParams(2)
	a := mustRun(t, p)
	b := mustRun(t, p)
	if a.TpmC != b.TpmC || a.CtlMsgsPerTxn != b.CtlMsgsPerTxn {
		t.Fatalf("nondeterministic: %.3f/%.3f vs %.3f/%.3f",
			a.TpmC, a.CtlMsgsPerTxn, b.TpmC, b.CtlMsgsPerTxn)
	}
}

func TestMixRoughlyNominal(t *testing.T) {
	c := mustNew(t, quickParams(1))
	m := runOK(t, c)
	total := float64(0)
	for _, n := range m.Commits {
		total += float64(n)
	}
	if total < 50 {
		t.Fatalf("too few commits (%v) to check mix", total)
	}
	noFrac := float64(m.Commits[tpcc.TxnNewOrder]) / total
	if noFrac < 0.30 || noFrac > 0.56 {
		t.Fatalf("new-order fraction %.2f, want ~0.43", noFrac)
	}
}
