// Package core assembles the full DCLUE system: server nodes (CPU model,
// disks, TCP/iSCSI stacks, database engine), the LATA network topology,
// the TPC-C client population with affinity routing, optional FTP cross
// traffic, and the measurement machinery. It is the paper's simulator in
// package form; the experiments package drives it to regenerate every
// figure.
package core

import (
	"fmt"
	"math"

	"dclue/internal/db"
	"dclue/internal/faults"
	"dclue/internal/iscsi"
	"dclue/internal/sim"
	"dclue/internal/tcp"
	"dclue/internal/telemetry"
	"dclue/internal/tpcc"
	"dclue/internal/trace"
)

// GrowthRule selects how the database grows with cluster size (Fig 10).
type GrowthRule int

const (
	// GrowthLinear follows TPC-C: warehouses proportional to throughput.
	GrowthLinear GrowthRule = iota
	// GrowthSqrtBeyond90K grows warehouses with the square root of
	// throughput beyond 90 K tpm-C (unscaled), as in the paper's Fig 10.
	GrowthSqrtBeyond90K
)

// Params configures one cluster simulation run. The zero value is not
// usable; start from DefaultParams.
type Params struct {
	Seed  uint64
	Scale float64 // the paper's system scale-down factor (100)

	Nodes        int
	NodesPerLata int // paper: 14-port routers support up to 12 servers

	Affinity float64 // α: probability a query routes to its home server

	// Workload sizing; zero values are derived from Nodes and Growth.
	Warehouses            int
	Items                 int
	CustomersPerDist      int
	TerminalsPerWarehouse int
	Growth                GrowthRule

	// Network.
	NodeLinkBps    float64  // server links (1 Gb/s unscaled)
	InterLataBps   float64  // inter-LATA links (1 or 10 Gb/s unscaled)
	RouterFwdRate  float64  // packets/s in the scaled model (paper: 10000)
	ExtraLatency   sim.Time // added inter-LATA delay (Figs 12-13)
	ClientLinkBps  float64
	RouterFwdLat   sim.Time
	NodePropDelay  sim.Time
	InterPropDelay sim.Time

	// Protocol implementation (Fig 11).
	SWTCP   bool // software TCP instead of HW offload
	SWiSCSI bool // software iSCSI instead of HW offload

	// Logging (Fig 9).
	CentralLogging bool
	// LogBatchLimit overrides the log device group-commit depth (0 keeps
	// the default; 1 disables group commit). Ablation knob.
	LogBatchLimit int

	// CentralSAN switches to §2.1's shared-IO model: all blocks live on a
	// pooled central disk array reached over an unmodeled SAN fabric
	// instead of per-node disks with iSCSI. Ablation knob.
	CentralSAN bool
	// SANLatency is the one-way SAN fabric latency (0 = 20 µs unscaled).
	SANLatency sim.Time

	// FIFODisks disables the per-table elevator (ablation knob).
	FIFODisks bool

	// DisableECN turns off ECN on every TCP connection (ablation knob).
	DisableECN bool

	// WFQRouters replaces strict-priority scheduling at every router port
	// with weighted fair queueing (equal weights), the interference remedy
	// the paper's conclusion calls for. Ablation knob.
	WFQRouters bool

	// CoarseSubpages switches every table to 8 lock subpages per block
	// instead of the tuned row-level granularity (§2.3). Ablation knob.
	CoarseSubpages bool

	// NoPrewarm starts every buffer cache cold. Ablation knob.
	NoPrewarm bool

	// Computation (Figs 13, 15, 16): divide DB path lengths by 4.
	LowComputation bool

	// Cross traffic (Figs 14-16): offered FTP load in *unscaled* bits/s
	// (e.g. 100e6 for the paper's 100 Mb/s point) and its QoS class.
	CrossTrafficBps      float64
	CrossTrafficPriority bool // FTP at AF21; DBMS stays best-effort

	// Node memory sizing.
	BufferFraction float64 // buffer cache as a fraction of the node's partition
	OverflowBytes  int

	// Run control.
	Warmup  sim.Time
	Measure sim.Time

	// MaxTxnRetries bounds the delayed-retry loop on lock failure.
	MaxTxnRetries int
	RetryDelay    sim.Time
	// RetryDelayMax caps the exponential backoff the retry loop switches to
	// when the recovery subsystem is armed (0 picks 16x RetryDelay). With a
	// node fenced, constant-delay retries would hammer the gate; backoff
	// spreads them across the fence-to-reopen window.
	RetryDelayMax sim.Time

	// Recovery subsystem knobs, active only when FaultSpec contains crash/
	// restart events (heartbeats, checkpoints and failover paths stay
	// completely unarmed otherwise, keeping fault-free runs event-for-event
	// identical to builds without the subsystem).
	//
	// Heartbeat is the membership heartbeat cadence (0 picks 5 ms scaled);
	// heartbeats are real packets on the IPC connections, so detection
	// latency is a property of the fabric. SuspectAfter is the lease: a live
	// peer silent this long becomes suspect (0 picks 4x Heartbeat).
	// CheckpointInterval is the dirty-page checkpoint cadence bounding how
	// much redo log a crash forces recovery to replay (0 picks 100 ms
	// scaled).
	Heartbeat          sim.Time
	SuspectAfter       sim.Time
	CheckpointInterval sim.Time

	// FaultSpec is a fault-injection schedule in the faults package's
	// compact syntax ("linkdown:node:1@60+10;loss:interlata:0@80+20=0.3");
	// empty disables injection. Targets: node:<i> (access link pair, CPU and
	// drives of server i), interlata:<l> (LATA l's uplink pair), client (the
	// client cloud's access pair), san (the pooled array, CentralSAN only).
	FaultSpec string

	// FetchTimeout bounds each GCS protocol wait and iSCSI command (0 picks
	// a default when FaultSpec is set, and disables timeouts otherwise — on
	// a fault-free fabric every reply eventually arrives).
	FetchTimeout sim.Time

	// TimelineBucket, when positive, records a throughput timeline at that
	// granularity (committed transactions per second per bucket, warmup
	// included) into Metrics.Timeline — the degradation/recovery view the
	// fault experiments plot.
	TimelineBucket sim.Time

	// Trace, when non-nil, enables the transaction-span observability layer
	// (internal/trace): the run registers itself with the collector, sampled
	// transactions record per-phase latency histograms that surface as
	// Metrics.Breakdown, and — when the collector retains events — span
	// segments and queue-occupancy gauges are kept for JSONL/Chrome export.
	// Tracing never perturbs the simulated trajectory: a traced run's
	// metrics (breakdown aside) are bit-identical to an untraced run's.
	//
	// The collector is process-local state, not configuration: it is
	// excluded from the JSON form of Params, which the experiment farm uses
	// as the canonical wire and cache-key encoding of a point. Farm workers
	// re-attach an equivalent histogram-only collector from the job's
	// trace-sample stride instead.
	Trace *trace.Collector `json:"-"`

	// TraceLabel names this run in trace exports; empty derives a label
	// from the cluster size and offload mode.
	TraceLabel string

	// Telemetry, when non-nil, enables the unified metrics registry
	// (internal/telemetry): the run registers per-component utilization
	// instruments — links and router ports with traffic-class attribution,
	// queue occupancy, CPU thread/IRQ busy, per-spindle disk utilization,
	// GCS message rates and lock waits, recovery phase timelines — and
	// reports Metrics.UtilDecomp. Like tracing, telemetry never perturbs the
	// simulated trajectory: an instrumented run's metrics (UtilDecomp aside)
	// are bit-identical to an uninstrumented run's
	// (Metrics.FingerprintSansTelemetry is the regression hook).
	//
	// The collector is process-local state, not configuration: it is
	// excluded from the JSON form of Params, which the experiment farm uses
	// as the canonical wire and cache-key encoding of a point. Farm workers
	// re-attach an equivalent collector from the job's telemetry fields.
	Telemetry *telemetry.Collector `json:"-"`

	// TelemetryLabel names this run in telemetry exports; empty derives a
	// label from the cluster size and offload mode.
	TelemetryLabel string
}

// DefaultParams returns the paper's baseline configuration at scale 100
// for the given cluster size: P4 DP nodes on 1 Gb/s Ethernet behind
// 14-port routers, HW TCP and iSCSI, local logging, TPC-C sized by the
// 12.5 tpm-C/warehouse rule (≈40 scaled warehouses per node), affinity 0.8.
func DefaultParams(nodes int) Params {
	scale := 100.0
	return Params{
		Seed:  1,
		Scale: scale,

		Nodes:        nodes,
		NodesPerLata: 12,
		Affinity:     0.8,

		Items:                 1000,
		CustomersPerDist:      120,
		TerminalsPerWarehouse: 10,

		NodeLinkBps:    1e9 / scale,
		InterLataBps:   1e9 / scale,
		RouterFwdRate:  10000 * 100 / scale,
		ClientLinkBps:  1e9 / scale,
		RouterFwdLat:   sim.Time(20 * scale), // 20 ns unscaled forwarding latency
		NodePropDelay:  sim.Time(1 * scale),  // ~1 ns/metre rack scale, scaled
		InterPropDelay: sim.Time(5 * scale),

		BufferFraction: 0.85,
		OverflowBytes:  4 << 20,

		Warmup:  150 * sim.Second,
		Measure: 240 * sim.Second,

		MaxTxnRetries: 10,
		RetryDelay:    sim.Time(0.5 * float64(sim.Millisecond) * scale),
	}
}

// telemetryLabel names this run in telemetry exports.
func (p *Params) telemetryLabel() string {
	if p.TelemetryLabel != "" {
		return p.TelemetryLabel
	}
	return p.traceLabel()
}

// heartbeat resolves the membership heartbeat cadence.
func (p *Params) heartbeat() sim.Time {
	if p.Heartbeat > 0 {
		return p.Heartbeat
	}
	return sim.Time(0.005 * float64(sim.Second) * p.Scale)
}

// suspectAfter resolves the membership lease (silence threshold).
func (p *Params) suspectAfter() sim.Time {
	if p.SuspectAfter > 0 {
		return p.SuspectAfter
	}
	return 4 * p.heartbeat()
}

// checkpointInterval resolves the dirty-page checkpoint cadence.
func (p *Params) checkpointInterval() sim.Time {
	if p.CheckpointInterval > 0 {
		return p.CheckpointInterval
	}
	return sim.Time(0.1 * float64(sim.Second) * p.Scale)
}

// retryDelayMax resolves the backoff cap for the recovery-armed retry loop.
func (p *Params) retryDelayMax() sim.Time {
	if p.RetryDelayMax > 0 {
		return p.RetryDelayMax
	}
	return 16 * p.RetryDelay
}

// FaultTargets lists the injectable target names this topology exposes, by
// class, so a fault schedule can be validated at parse time — before any
// simulation object exists — with errors that name the valid targets.
func (p *Params) FaultTargets() faults.Targets {
	var t faults.Targets
	for i := 0; i < p.Nodes; i++ {
		name := fmt.Sprintf("node:%d", i)
		t.Links = append(t.Links, name)
		t.CPUs = append(t.CPUs, name)
		t.Drives = append(t.Drives, name)
		t.Nodes = append(t.Nodes, fmt.Sprintf("dp%d", i))
	}
	for l := range p.LataLayout() {
		t.Links = append(t.Links, fmt.Sprintf("interlata:%d", l))
	}
	t.Links = append(t.Links, "client")
	if p.CentralSAN {
		t.Drives = append(t.Drives, "san")
	}
	return t
}

// ValidateFaultSpec parses FaultSpec and resolves every target against the
// cluster topology, without building a cluster. CLIs call it before
// simulation so a typo fails in milliseconds with the valid names listed.
func (p *Params) ValidateFaultSpec() error {
	if p.FaultSpec == "" {
		return nil
	}
	sch, err := faults.ParseSchedule(p.FaultSpec)
	if err != nil {
		return err
	}
	return sch.Validate(p.FaultTargets())
}

// WarehouseCount applies the growth rule.
func (p *Params) WarehouseCount() int {
	if p.Warehouses > 0 {
		return p.Warehouses
	}
	linear := 40 * p.Nodes // ≈500 scaled tpm-C per node at 12.5 tpm-C/warehouse
	if p.Growth == GrowthLinear {
		return linear
	}
	// Fig 10: TPC-C sizing up to 90 K tpm-C (72 scaled warehouses), then
	// warehouses grow as the square root of the additional throughput.
	const kneeWh = 72
	if linear <= kneeWh {
		return linear
	}
	extra := float64(linear - kneeWh)
	return kneeWh + int(math.Sqrt(20*extra))
}

// LataLayout splits nodes into LATAs of at most NodesPerLata.
func (p *Params) LataLayout() []int {
	n := p.Nodes
	per := p.NodesPerLata
	if per <= 0 {
		per = 12
	}
	var latas []int
	for n > 0 {
		take := per
		if n < take {
			take = n
		}
		latas = append(latas, take)
		n -= take
	}
	return latas
}

// tpccConfig derives the workload sizing.
func (p *Params) tpccConfig() tpcc.Config {
	return tpcc.Config{
		Warehouses:       p.WarehouseCount(),
		Items:            p.Items,
		CustomersPerDist: p.CustomersPerDist,
		CoarseSubpages:   p.CoarseSubpages,
	}
}

// tcpCosts returns the per-stack TCP cost model. The software path pays per
// segment and per byte (1 copy on send, 2 on receive, §2.1); the offloaded
// path leaves a small host touch per message.
func (p *Params) tcpCosts() tcp.CostModel {
	if p.SWTCP {
		// Kernel TCP of the era: interrupt + protocol + buffer management
		// per segment, plus one copy on send and two on receive.
		return tcp.CostModel{
			SendPerSegment: 9000,
			SendPerByte:    1.0,
			RecvPerSegment: 12000,
			RecvPerByte:    2.0,
			ConnSetup:      60000,
		}
	}
	return tcp.CostModel{
		SendPerSegment: 400,
		SendPerByte:    0.02,
		RecvPerSegment: 500,
		RecvPerByte:    0.02,
		ConnSetup:      6000,
	}
}

// iscsiCosts returns the iSCSI cost model (Fig 11's second knob).
func (p *Params) iscsiCosts() iscsi.CostModel {
	if p.SWiSCSI {
		return iscsi.SWCosts()
	}
	return iscsi.HWCosts()
}

// opCosts returns the DB path-length table, possibly in the low-computation
// variant.
func (p *Params) opCosts() *db.OpCosts {
	c := db.DefaultOpCosts()
	if p.LowComputation {
		c = c.Scale(0.25)
	}
	return c
}
