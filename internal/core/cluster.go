package core

import (
	"fmt"

	"dclue/internal/db"
	"dclue/internal/disk"
	"dclue/internal/iscsi"
	"dclue/internal/netsim"
	"dclue/internal/platform"
	"dclue/internal/rng"
	"dclue/internal/sim"
	"dclue/internal/tcp"
	"dclue/internal/tpcc"
)

// Well-known ports on server nodes.
const (
	PortIPC    = 5001
	PortClient = 8000
)

// DataDrivesPerNode is the per-node data spindle count (log disk separate).
// Real 50 K tpm-C nodes of the era ran wide disk farms; 16 scaled spindles
// keep random-read capacity from becoming the artificial bottleneck the
// paper's calibration avoids.
const DataDrivesPerNode = 16

// node bundles one server's components.
type node struct {
	idx       int
	cpu       *platform.CPU
	stack     *tcp.Stack
	drives    []*disk.Drive
	logDisk   *disk.LogDisk
	initiator *iscsi.Initiator
	target    *iscsi.Target
	dbn       *db.Node
	transport *ipcTransport
	workerRnd *rng.Stream
}

// Cluster is one assembled simulation instance.
type Cluster struct {
	P    Params
	Sim  *sim.Sim
	Topo *netsim.Topology
	Dom  *tcp.Domain
	Cat  *db.Catalog
	Eng  *tpcc.Engine

	nodes       []*node
	clientStack *tcp.Stack
	ftp         *ftpApp

	// Post-warmup counters.
	commits   [tpcc.NumTxnTypes]uint64
	rollbacks uint64
	retries   uint64
	failures  uint64
	respTally respTimes
	measuring bool
}

type respTimes struct {
	n   uint64
	sum sim.Time
}

// New builds a cluster per the parameters. Run must be called to simulate.
func New(p Params) *Cluster {
	if p.Scale <= 0 {
		panic("core: Params.Scale must be positive; start from DefaultParams")
	}
	s := sim.New()
	c := &Cluster{P: p, Sim: s}

	// Network.
	var portSetup func(*netsim.Qdisc)
	if p.WFQRouters {
		portSetup = func(q *netsim.Qdisc) { q.SetDiscipline(netsim.DiscWFQ, nil) }
	}
	c.Topo = netsim.BuildTopology(s, netsim.TopologyConfig{
		NodesPerLata:          p.LataLayout(),
		NodeLinkBps:           p.NodeLinkBps,
		InterLataBps:          p.InterLataBps,
		ClientBps:             p.ClientLinkBps,
		NodeProp:              p.NodePropDelay,
		InterProp:             p.InterPropDelay,
		ExtraInterLataLatency: p.ExtraLatency,
		InnerFwdRate:          p.RouterFwdRate,
		OuterFwdRate:          p.RouterFwdRate,
		FwdLatency:            p.RouterFwdLat,
		WithExtraHosts:        p.CrossTrafficBps > 0,
		PortSetup:             portSetup,
	})
	tcpCfg := tcp.DefaultConfig(p.Scale)
	if p.DisableECN {
		tcpCfg.ECN = false
	}
	c.Dom = tcp.NewDomain(c.Topo.Net, tcpCfg)

	// Database catalog + TPC-C population.
	c.Cat = db.NewCatalog(p.Nodes)
	c.Eng = tpcc.New(c.Cat, p.tpccConfig(), p.Seed)

	// Per-node buffer sizing: a fraction of this node's partition.
	totalBlocks := int64(0)
	for _, t := range c.Cat.Tables {
		totalBlocks += t.Blocks()
	}
	frames := int(float64(totalBlocks) / float64(p.Nodes) * p.BufferFraction)
	if frames < 256 {
		frames = 256
	}

	// Shared-IO (SAN) array, when configured: the same spindle count as
	// the distributed model, pooled centrally.
	var san *db.SANArray
	if p.CentralSAN {
		lat := p.SANLatency
		if lat == 0 {
			lat = sim.Time(20e3 * p.Scale) // 20 us unscaled
		}
		san = &db.SANArray{Sim: s, Latency: lat}
		for d := 0; d < DataDrivesPerNode*p.Nodes; d++ {
			san.Drives = append(san.Drives, disk.NewDrive(s, disk.DefaultParams(p.Scale),
				rng.Derive(p.Seed, fmt.Sprintf("san-%d", d))))
		}
	}

	opCosts := p.opCosts()
	for i := 0; i < p.Nodes; i++ {
		n := c.buildNode(i, frames, opCosts)
		if san != nil {
			n.dbn.Pager.SetSAN(san)
		}
		c.nodes = append(c.nodes, n)
	}

	// Client cloud: infinite client-side compute (the paper does not model
	// client performance), its own stack.
	c.clientStack = c.Dom.NewStack(netsim.AddrClientCloud, tcp.InstantProcessor{}, p.tcpCosts())

	// Prewarm: each node starts with its own partition resident, hottest
	// tables first (DCLUE builds the database in memory; this removes the
	// cold-start transient the paper's warmup also discards).
	if !p.NoPrewarm {
		c.prewarm()
	}

	// Cross traffic.
	if p.CrossTrafficBps > 0 {
		c.ftp = newFTPApp(c)
	}

	// Establish the static connection mesh, then the workload.
	s.Spawn("setup", c.setup)
	return c
}

// buildNode assembles one server.
func (c *Cluster) buildNode(i int, frames int, opCosts *db.OpCosts) *node {
	p := c.P
	s := c.Sim
	n := &node{idx: i}
	n.cpu = platform.NewCPU(s, platform.DefaultConfig(p.Scale))
	n.stack = c.Dom.NewStack(netsim.NodeAddr(i), n.cpu, p.tcpCosts())
	for d := 0; d < DataDrivesPerNode; d++ {
		n.drives = append(n.drives, disk.NewDrive(s, disk.DefaultParams(p.Scale),
			rng.Derive(p.Seed, fmt.Sprintf("drive-%d-%d", i, d))))
	}
	n.logDisk = disk.DefaultLogDisk(s, p.Scale)
	if p.LogBatchLimit > 0 {
		n.logDisk.SetBatchLimit(p.LogBatchLimit)
	}
	if p.FIFODisks {
		for _, d := range n.drives {
			d.SetFIFO(true)
		}
	}
	n.initiator = iscsi.NewInitiator(s, n.cpu, p.iscsiCosts())
	idx := i
	n.target = iscsi.NewTarget(s, n.cpu, p.iscsiCosts(), func(table int) *disk.Drive {
		return n.drives[table%len(n.drives)]
	})
	mkPager := func(costs *db.OpCosts, cache *db.BufferCache) *db.Pager {
		return db.NewPager(s, idx, c.Cat, n.cpu, n.drives, n.initiator, costs)
	}
	n.dbn = db.NewNode(s, i, c.Cat, n.cpu,
		db.NodeConfig{
			BufferFrames:  frames,
			OverflowBytes: p.OverflowBytes,
			GCInterval:    sim.Time(1 * float64(sim.Second) * p.Scale / 100),
			GCHorizon:     sim.Time(30 * float64(sim.Second) * p.Scale / 100),
		},
		mkPager, opCosts, n.logDisk)
	// The deadlock-suspicion timeout must comfortably exceed a transaction
	// holding time (~150 ms scaled when warm) so that ordinary contention
	// waits succeed and only genuine deadlocks trip it.
	n.dbn.GCS.DeadlockTimeout = sim.Time(0.05 * float64(sim.Second) * p.Scale)
	if p.CentralLogging {
		n.dbn.GCS.CentralLogNode = 0
	}
	n.transport = &ipcTransport{cluster: c, self: i}
	n.dbn.GCS.SetTransport(n.transport)
	n.workerRnd = rng.Derive(p.Seed, fmt.Sprintf("worker-%d", i))

	// Estimated remote-work fraction for the MPI heuristic (§2.3): queries
	// landing off-home touch remote data.
	remote := (1 - p.Affinity) * float64(p.Nodes-1) / float64(p.Nodes)
	n.cpu.SetRemoteFraction(remote)

	// Listeners.
	n.stack.Listen(PortIPC, func(conn *tcp.Conn) { c.acceptIPC(i, conn) })
	n.stack.Listen(iscsi.Port, func(conn *tcp.Conn) { c.acceptISCSI(i, conn) })
	n.stack.Listen(PortClient, func(conn *tcp.Conn) { c.acceptClient(i, conn) })
	return n
}

// setup dials the static mesh (2 connections per server pair: IPC and
// iSCSI, §2.3) and then starts terminals and cross traffic.
func (c *Cluster) setup(p *sim.Proc) {
	ipcOpts := tcp.DialOptions{Class: netsim.ClassBestEffort, MaxRetx: 1000}
	for i := 0; i < c.P.Nodes; i++ {
		for j := i + 1; j < c.P.Nodes; j++ {
			ipc := tcp.Dial(p, c.nodes[i].stack, netsim.NodeAddr(j), PortIPC, ipcOpts)
			if ipc == nil {
				panic("core: IPC dial failed during setup")
			}
			c.bindIPC(i, j, ipc)
			sto := tcp.Dial(p, c.nodes[i].stack, netsim.NodeAddr(j), iscsi.Port, ipcOpts)
			if sto == nil {
				panic("core: iSCSI dial failed during setup")
			}
			c.bindISCSI(i, j, sto)
		}
	}
	c.startTerminals()
	if c.ftp != nil {
		c.ftp.start()
	}
	// Warmup boundary: reset statistics.
	c.Sim.At(c.P.Warmup, func() { c.resetStats() })
}

// startTerminals spawns the TPC-C client population.
func (c *Cluster) startTerminals() {
	wh := c.Eng.Warehouses()
	for w := 0; w < wh; w++ {
		for t := 0; t < c.P.TerminalsPerWarehouse; t++ {
			w, t := w, t
			c.Sim.Spawn(fmt.Sprintf("term-%d-%d", w, t), func(p *sim.Proc) {
				c.terminal(p, w, t)
			})
		}
	}
}

// Run simulates warmup plus measurement and returns the metrics.
func (c *Cluster) Run() Metrics {
	end := c.P.Warmup + c.P.Measure
	c.Sim.Run(end)
	m := c.collect()
	c.Sim.Shutdown()
	return m
}

// prewarm fills every node's buffer cache with its own partition, hottest
// tables first.
func (c *Cluster) prewarm() {
	order := []int{tpcc.TDistrict, tpcc.TWarehouse, tpcc.TStock, tpcc.TItem,
		tpcc.TNewOrder, tpcc.TOrder, tpcc.TCustomer, tpcc.TOrderLine, tpcc.THistory}
	full := make([]bool, len(c.nodes))
	warm := func(blk db.BlockID) {
		home := c.Cat.Home(blk)
		if full[home] {
			return
		}
		if !c.nodes[home].dbn.GCS.Prewarm(blk) {
			full[home] = true
		}
	}
	// Index leaves first — they are the hottest blocks of all.
	for _, ti := range order {
		t := c.Eng.Tables[ti]
		for b := int64(0); b < t.IndexLeafBlocks(); b++ {
			warm(t.IndexLeafBlock(b))
		}
	}
	for _, ti := range order {
		t := c.Eng.Tables[ti]
		for b := int64(0); b < t.Blocks(); b++ {
			warm(db.BlockID{Table: t.ID, Block: b})
		}
	}
}

// resetStats zeroes the measured counters at the warmup boundary.
func (c *Cluster) resetStats() {
	c.measuring = true
	now := c.Sim.Now()
	for i := range c.commits {
		c.commits[i] = 0
	}
	c.rollbacks, c.retries, c.failures = 0, 0, 0
	c.respTally = respTimes{}
	for _, n := range c.nodes {
		n.dbn.Stats = db.NodeStats{}
		n.dbn.GCS.Stats = db.GCSStats{}
		n.cpu.ResetStats(now)
		n.dbn.Cache.Hits, n.dbn.Cache.Misses = 0, 0
	}
	c.Topo.Net.Drops, c.Topo.Net.Marks = 0, 0
	for i := range c.Topo.Net.DelayByClass {
		c.Topo.Net.DelayByClass[i] = netsim.DelayTally{}
	}
	c.Dom.Retransmits, c.Dom.Resets = 0, 0
	if c.ftp != nil {
		c.ftp.resetStats()
	}
}
