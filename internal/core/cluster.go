package core

import (
	"fmt"

	"dclue/internal/db"
	"dclue/internal/disk"
	"dclue/internal/faults"
	"dclue/internal/iscsi"
	"dclue/internal/netsim"
	"dclue/internal/platform"
	"dclue/internal/rng"
	"dclue/internal/sim"
	"dclue/internal/stats"
	"dclue/internal/tcp"
	"dclue/internal/telemetry"
	"dclue/internal/tpcc"
	"dclue/internal/trace"
)

// Well-known ports on server nodes.
const (
	PortIPC    = 5001
	PortClient = 8000
)

// DataDrivesPerNode is the per-node data spindle count (log disk separate).
// Real 50 K tpm-C nodes of the era ran wide disk farms; 16 scaled spindles
// keep random-read capacity from becoming the artificial bottleneck the
// paper's calibration avoids.
const DataDrivesPerNode = 16

// node bundles one server's components. A crash-restart rebuilds the
// volatile fields (cpu, initiator, target, dbn, transport) in place on the
// same *node, so closures holding the pointer — listener callbacks, fault
// registrations — resolve to the rebuilt engine; the stack, drives and log
// disk persist (NICs and enclosures survive an OS crash).
type node struct {
	idx       int
	cpu       *platform.CPU
	stack     *tcp.Stack
	drives    []*disk.Drive
	logDisk   *disk.LogDisk
	initiator *iscsi.Initiator
	target    *iscsi.Target
	dbn       *db.Node
	transport *ipcTransport
	workerRnd *rng.Stream

	// tracked collects this node's dynamically-spawned processes (workers,
	// heartbeats, recovery drivers) so a crash can kill them in spawn order;
	// finished entries are compacted away as it grows.
	tracked []*sim.Proc
}

// spawnOn spawns a process owned by node i, tracked for crash teardown.
func (c *Cluster) spawnOn(i int, name string, fn func(*sim.Proc)) *sim.Proc {
	n := c.nodes[i]
	if len(n.tracked) >= 1024 {
		live := n.tracked[:0]
		for _, p := range n.tracked {
			if !p.Done() {
				live = append(live, p)
			}
		}
		n.tracked = live
	}
	p := c.Sim.Spawn(name, fn)
	n.tracked = append(n.tracked, p)
	return p
}

// Cluster is one assembled simulation instance.
type Cluster struct {
	P    Params
	Sim  *sim.Sim
	Topo *netsim.Topology
	Dom  *tcp.Domain
	Cat  *db.Catalog
	Eng  *tpcc.Engine

	nodes       []*node
	clientStack *tcp.Stack
	ftp         *ftpApp
	san         *db.SANArray
	inj         *faults.Injector

	// rec is the crash-recovery subsystem, armed only when the fault
	// schedule contains crash/restart events (nil otherwise — fault-free
	// runs stay event-for-event identical to builds without it).
	rec *recState

	// frames and opCosts are kept for rebuilding a node's engine on restart.
	frames  int
	opCosts *db.OpCosts

	// Post-warmup counters.
	commits   [tpcc.NumTxnTypes]uint64
	rollbacks uint64
	retries   uint64
	failures  uint64
	respTally respTimes
	respHist  *stats.Histogram // client-observed response times, scaled ms
	measuring bool

	// tr is the trace sink when Params.Trace is set (nil otherwise); spans
	// and gauges of this run land there.
	tr *trace.Run

	// telReg is this run's telemetry registry when Params.Telemetry is set
	// (nil otherwise). The instrument handles are kept so collect can
	// cross-check attribution and attachEngine can re-attach across node
	// restarts; see cluster_telemetry.go.
	telReg   *telemetry.Registry
	telLinks []telLink
	telCPU   []*telemetry.CPUTel
	telGCS   []*telemetry.GCSTel
	telDisks []*telemetry.DiskTel
	telLogs  []*telemetry.DiskTel

	// allCommits counts every commit from t=0 (warmup included) so the
	// throughput timeline can show degradation and recovery around fault
	// windows that straddle the warmup boundary.
	allCommits      uint64
	timeline        []TimelinePoint
	timelineCommits uint64

	// runErr records a fatal condition detected mid-run (setup dial failure,
	// kernel deadlock); Run stops the simulation and returns it.
	runErr error
}

type respTimes struct {
	n   uint64
	sum sim.Time
}

// New builds a cluster per the parameters. Run must be called to simulate.
// It returns an error when the parameters are unusable — today that means a
// fault schedule that does not parse or names an unknown target.
func New(p Params) (*Cluster, error) {
	if p.Scale <= 0 {
		panic("core: Params.Scale must be positive; start from DefaultParams")
	}
	s := sim.New()
	c := &Cluster{P: p, Sim: s}
	c.respHist = newRespHist()
	if p.Trace != nil {
		c.tr = p.Trace.NewRun(p.traceLabel())
	}
	if p.Telemetry != nil {
		c.initTelemetry()
	}

	// Network.
	var portSetup func(*netsim.Qdisc)
	if p.WFQRouters {
		portSetup = func(q *netsim.Qdisc) { q.SetDiscipline(netsim.DiscWFQ, nil) }
	}
	c.Topo = netsim.BuildTopology(s, netsim.TopologyConfig{
		NodesPerLata:          p.LataLayout(),
		NodeLinkBps:           p.NodeLinkBps,
		InterLataBps:          p.InterLataBps,
		ClientBps:             p.ClientLinkBps,
		NodeProp:              p.NodePropDelay,
		InterProp:             p.InterPropDelay,
		ExtraInterLataLatency: p.ExtraLatency,
		InnerFwdRate:          p.RouterFwdRate,
		OuterFwdRate:          p.RouterFwdRate,
		FwdLatency:            p.RouterFwdLat,
		WithExtraHosts:        p.CrossTrafficBps > 0,
		PortSetup:             portSetup,
	})
	tcpCfg := tcp.DefaultConfig(p.Scale)
	if p.DisableECN {
		tcpCfg.ECN = false
	}
	c.Dom = tcp.NewDomain(c.Topo.Net, tcpCfg)

	// Database catalog + TPC-C population.
	c.Cat = db.NewCatalog(p.Nodes)
	c.Eng = tpcc.New(c.Cat, p.tpccConfig(), p.Seed)

	// Per-node buffer sizing: a fraction of this node's partition.
	totalBlocks := int64(0)
	for _, t := range c.Cat.Tables {
		totalBlocks += t.Blocks()
	}
	frames := int(float64(totalBlocks) / float64(p.Nodes) * p.BufferFraction)
	if frames < 256 {
		frames = 256
	}

	// Shared-IO (SAN) array, when configured: the same spindle count as
	// the distributed model, pooled centrally.
	var san *db.SANArray
	if p.CentralSAN {
		lat := p.SANLatency
		if lat == 0 {
			lat = sim.Time(20e3 * p.Scale) // 20 us unscaled
		}
		san = &db.SANArray{Sim: s, Latency: lat}
		for d := 0; d < DataDrivesPerNode*p.Nodes; d++ {
			san.Drives = append(san.Drives, disk.NewDrive(s, disk.DefaultParams(p.Scale),
				rng.Derive(p.Seed, fmt.Sprintf("san-%d", d))))
		}
		c.san = san
	}

	// Fault schedule: parse and validate before node construction, because a
	// schedule with crash/restart events arms the recovery subsystem whose
	// per-node hooks (gates, cluster-message handlers) are wired as each
	// engine is attached.
	var sch faults.Schedule
	if p.FaultSpec != "" {
		var err error
		sch, err = faults.ParseSchedule(p.FaultSpec)
		if err != nil {
			return nil, err
		}
		// Resolve every target against the topology first: the error lists
		// the valid names, which the injector's live registry cannot.
		if err := sch.Validate(p.FaultTargets()); err != nil {
			return nil, err
		}
		if sch.HasNodeLifecycle() {
			c.rec = newRecState(c)
		}
	}

	opCosts := p.opCosts()
	c.frames, c.opCosts = frames, opCosts
	for i := 0; i < p.Nodes; i++ {
		n := c.buildNode(i, frames, opCosts)
		if san != nil {
			n.dbn.Pager.SetSAN(san)
		}
		c.nodes = append(c.nodes, n)
	}

	// Client cloud: infinite client-side compute (the paper does not model
	// client performance), its own stack.
	c.clientStack = c.Dom.NewStack(netsim.AddrClientCloud, tcp.InstantProcessor{}, p.tcpCosts())

	// Fabric and disk instruments attach once topology and nodes exist (the
	// per-node engine instruments attached inside attachEngine above).
	if c.telReg != nil {
		c.instrumentFabric()
	}

	// Prewarm: each node starts with its own partition resident, hottest
	// tables first (DCLUE builds the database in memory; this removes the
	// cold-start transient the paper's warmup also discards).
	if !p.NoPrewarm {
		c.prewarm()
	}

	// Cross traffic.
	if p.CrossTrafficBps > 0 {
		c.ftp = newFTPApp(c)
	}

	// Bind the fault schedule to the now-built components. attachEngine has
	// already bounded every protocol wait (fetchTimeout), so injected losses
	// surface as retries or aborted transactions rather than hung workers.
	if p.FaultSpec != "" {
		c.inj = faults.NewInjector(s, p.Seed)
		c.registerFaultTargets()
		if err := c.inj.Apply(sch); err != nil {
			return nil, err
		}
	}

	// Throughput timeline for degradation/recovery plots.
	if p.TimelineBucket > 0 {
		c.startTimeline()
	}

	// Queue-occupancy gauges for trace export. The sampler only reads queue
	// depths — it never touches model state — so its calendar events cannot
	// reorder or perturb model events.
	if c.tr != nil && c.tr.KeepsEvents() {
		c.startGaugeSampler()
	}

	// Establish the static connection mesh, then the workload.
	s.Spawn("setup", c.setup)
	return c, nil
}

// fetchTimeout resolves the protocol-wait bound: explicit param wins; a
// fault schedule with no explicit bound gets a default comfortably above
// healthy fetch latency (which is sub-millisecond at any scale) yet short
// enough to ride out fault windows via retries.
func (c *Cluster) fetchTimeout() sim.Time {
	if c.P.FetchTimeout > 0 {
		return c.P.FetchTimeout
	}
	if c.P.FaultSpec == "" {
		return 0
	}
	return sim.Time(0.02 * float64(sim.Second) * c.P.Scale)
}

// registerFaultTargets names every injectable component for the schedule.
func (c *Cluster) registerFaultTargets() {
	for i, n := range c.nodes {
		name := fmt.Sprintf("node:%d", i)
		up, down := c.Topo.NodeLinks(i)
		c.inj.RegisterLinks(name, up, down)
		c.inj.RegisterCPU(name, n.cpu)
		c.inj.RegisterDrives(name, n.drives...)
		c.inj.RegisterNode(fmt.Sprintf("dp%d", i), &nodeCtl{c: c, idx: i})
	}
	for l := range c.Topo.Config.NodesPerLata {
		up, down := c.Topo.InterLataLinkPair(l)
		c.inj.RegisterLinks(fmt.Sprintf("interlata:%d", l), up, down)
	}
	up, down := c.Topo.ClientLinks()
	c.inj.RegisterLinks("client", up, down)
	if c.san != nil {
		c.inj.RegisterDrives("san", c.san.Drives...)
	}
}

// startTimeline samples committed-transaction throughput once per bucket
// from t=0 to the end of the run.
func (c *Cluster) startTimeline() {
	end := c.P.Warmup + c.P.Measure
	bucket := c.P.TimelineBucket
	var sample func()
	sample = func() {
		cur := c.allCommits
		c.timeline = append(c.timeline, TimelinePoint{
			T:       c.Sim.Now(),
			TxnRate: float64(cur-c.timelineCommits) / bucket.Seconds(),
		})
		c.timelineCommits = cur
		if c.Sim.Now() < end {
			c.Sim.After(bucket, sample)
		}
	}
	c.Sim.After(bucket, sample)
}

// newRespHist allocates the client response-time histogram: 0.25 ms buckets
// to 8 s, matching the trace layer's span histograms.
func newRespHist() *stats.Histogram { return stats.NewHistogram(0.25, 32000) }

// traceLabel names this run in trace exports.
func (p *Params) traceLabel() string {
	if p.TraceLabel != "" {
		return p.TraceLabel
	}
	off := "hw"
	if p.SWTCP || p.SWiSCSI {
		off = "sw"
	}
	return fmt.Sprintf("n%d-%s", p.Nodes, off)
}

// startGaugeSampler records transmit-queue occupancy across the fabric once
// per simulated second: every server and client NIC egress queue plus every
// router output port. Read-only by construction.
func (c *Cluster) startGaugeSampler() {
	if c.tr == nil {
		return // untraced run: no sink, no sampler
	}
	type gauge struct {
		name string
		q    *netsim.Qdisc
	}
	var gs []gauge
	for i := range c.nodes {
		up, _ := c.Topo.NodeLinks(i)
		gs = append(gs, gauge{fmt.Sprintf("node%d.nic", i), up.Queue()})
	}
	clientUp, _ := c.Topo.ClientLinks()
	gs = append(gs, gauge{"client.nic", clientUp.Queue()})
	for ri, r := range c.Topo.Inner {
		for pi, q := range r.Ports() {
			gs = append(gs, gauge{fmt.Sprintf("inner%d.port%d", ri, pi), q})
		}
	}
	for pi, q := range c.Topo.Outer.Ports() {
		gs = append(gs, gauge{fmt.Sprintf("outer.port%d", pi), q})
	}
	end := c.P.Warmup + c.P.Measure
	const period = 1 * sim.Second
	var sample func()
	sample = func() {
		now := c.Sim.Now()
		for _, g := range gs {
			c.tr.Gauge(now, g.name, g.q.Depth(), g.q.Len())
		}
		if now < end {
			c.Sim.After(period, sample)
		}
	}
	c.Sim.After(period, sample)
}

// Run builds a cluster from p and simulates it to completion.
func Run(p Params) (Metrics, error) {
	c, err := New(p)
	if err != nil {
		return Metrics{}, err
	}
	return c.Run()
}

// MustRun is Run for known-good parameter sets (the figure drivers, whose
// configurations are fixed): any error is a bug, so it panics.
func MustRun(p Params) Metrics {
	m, err := Run(p)
	if err != nil {
		panic(err)
	}
	return m
}

// fail records the first fatal mid-run condition and stops the simulation.
func (c *Cluster) fail(err error) {
	if c.runErr == nil {
		c.runErr = err
	}
	c.Sim.Stop()
}

// buildNode assembles one server.
func (c *Cluster) buildNode(i int, frames int, opCosts *db.OpCosts) *node {
	p := c.P
	s := c.Sim
	n := &node{idx: i}
	n.cpu = platform.NewCPU(s, platform.DefaultConfig(p.Scale))
	n.stack = c.Dom.NewStack(netsim.NodeAddr(i), n.cpu, p.tcpCosts())
	for d := 0; d < DataDrivesPerNode; d++ {
		n.drives = append(n.drives, disk.NewDrive(s, disk.DefaultParams(p.Scale),
			rng.Derive(p.Seed, fmt.Sprintf("drive-%d-%d", i, d))))
	}
	n.logDisk = disk.DefaultLogDisk(s, p.Scale)
	if p.LogBatchLimit > 0 {
		n.logDisk.SetBatchLimit(p.LogBatchLimit)
	}
	if p.FIFODisks {
		for _, d := range n.drives {
			d.SetFIFO(true)
		}
	}
	c.attachEngine(n, frames, opCosts)
	n.workerRnd = rng.Derive(p.Seed, fmt.Sprintf("worker-%d", i))

	// Listeners. The closures resolve the node's current components at
	// accept time, so they keep working across a crash-restart rebuild.
	n.stack.Listen(PortIPC, func(conn *tcp.Conn) { c.acceptIPC(i, conn) })
	n.stack.Listen(iscsi.Port, func(conn *tcp.Conn) { c.acceptISCSI(i, conn) })
	n.stack.Listen(PortClient, func(conn *tcp.Conn) { c.acceptClient(i, conn) })
	return n
}

// attachEngine builds the volatile half of a server — CPU-attached iSCSI
// endpoints, database engine, IPC transport — onto n, wiring timeouts and
// recovery hooks. buildNode calls it at assembly; restartNode calls it again
// to boot a fresh engine on the surviving hardware (n.cpu must be set by the
// caller; stack, drives and logDisk are reused).
func (c *Cluster) attachEngine(n *node, frames int, opCosts *db.OpCosts) {
	p := c.P
	s := c.Sim
	i := n.idx
	n.initiator = iscsi.NewInitiator(s, n.cpu, p.iscsiCosts())
	n.target = iscsi.NewTarget(s, n.cpu, p.iscsiCosts(), func(table int) *disk.Drive {
		return n.drives[table%len(n.drives)]
	})
	mkPager := func(costs *db.OpCosts, cache *db.BufferCache) *db.Pager {
		return db.NewPager(s, i, c.Cat, n.cpu, n.drives, n.initiator, costs)
	}
	n.dbn = db.NewNode(s, i, c.Cat, n.cpu,
		db.NodeConfig{
			BufferFrames:  frames,
			OverflowBytes: p.OverflowBytes,
			GCInterval:    sim.Time(1 * float64(sim.Second) * p.Scale / 100),
			GCHorizon:     sim.Time(30 * float64(sim.Second) * p.Scale / 100),
		},
		mkPager, opCosts, n.logDisk)
	// The deadlock-suspicion timeout must comfortably exceed a transaction
	// holding time (~150 ms scaled when warm) so that ordinary contention
	// waits succeed and only genuine deadlocks trip it.
	n.dbn.GCS.DeadlockTimeout = sim.Time(0.05 * float64(sim.Second) * p.Scale)
	if p.CentralLogging {
		n.dbn.GCS.CentralLogNode = 0
	}
	n.transport = &ipcTransport{cluster: c, self: i}
	n.dbn.GCS.SetTransport(n.transport)
	if ft := c.fetchTimeout(); ft > 0 {
		n.dbn.GCS.FetchTimeout = ft
		n.initiator.Timeout = ft
		n.initiator.MaxRetries = 2
	}
	if c.rec != nil {
		c.rec.wireNode(n)
	}
	if c.telReg != nil {
		// Re-attach across restarts: the node keeps its cumulative
		// instruments even though the CPU and engine are rebuilt.
		n.cpu.SetTelemetry(c.telCPU[i])
		n.dbn.GCS.SetTelemetry(c.telGCS[i])
	}

	// Estimated remote-work fraction for the MPI heuristic (§2.3): queries
	// landing off-home touch remote data.
	remote := (1 - p.Affinity) * float64(p.Nodes-1) / float64(p.Nodes)
	n.cpu.SetRemoteFraction(remote)
}

// setup dials the static mesh (2 connections per server pair: IPC and
// iSCSI, §2.3) and then starts terminals and cross traffic.
func (c *Cluster) setup(p *sim.Proc) {
	ipcOpts := tcp.DialOptions{Class: netsim.ClassBestEffort, MaxRetx: 1000, TC: telemetry.ClassIPC}
	stoOpts := ipcOpts
	stoOpts.TC = telemetry.ClassISCSI
	for i := 0; i < c.P.Nodes; i++ {
		for j := i + 1; j < c.P.Nodes; j++ {
			ipc := tcp.Dial(p, c.nodes[i].stack, netsim.NodeAddr(j), PortIPC, ipcOpts)
			if ipc == nil {
				c.fail(fmt.Errorf("core: IPC dial %d->%d failed during setup", i, j))
				return
			}
			c.bindIPC(i, j, ipc)
			sto := tcp.Dial(p, c.nodes[i].stack, netsim.NodeAddr(j), iscsi.Port, stoOpts)
			if sto == nil {
				c.fail(fmt.Errorf("core: iSCSI dial %d->%d failed during setup", i, j))
				return
			}
			c.bindISCSI(i, j, sto)
		}
	}
	// Membership and checkpointing ride on the established mesh: starting
	// them before the dials complete would raise false suspicions against
	// peers that are merely still handshaking.
	if c.rec != nil {
		for i := range c.nodes {
			c.rec.startMembership(i)
			c.rec.startCheckpoints(i)
		}
	}
	c.startTerminals()
	if c.ftp != nil {
		c.ftp.start()
	}
	// Warmup boundary: reset statistics.
	c.Sim.At(c.P.Warmup, func() { c.resetStats() })
}

// startTerminals spawns the TPC-C client population.
func (c *Cluster) startTerminals() {
	wh := c.Eng.Warehouses()
	for w := 0; w < wh; w++ {
		for t := 0; t < c.P.TerminalsPerWarehouse; t++ {
			w, t := w, t
			c.Sim.Spawn(fmt.Sprintf("term-%d-%d", w, t), func(p *sim.Proc) {
				c.terminal(p, w, t)
			})
		}
	}
}

// Run simulates warmup plus measurement and returns the metrics. It fails —
// rather than hanging or silently truncating — when setup cannot establish
// the connection mesh or when the kernel watchdog finds the simulation
// wedged (every remaining process parked with an empty calendar, which a
// protocol bug under fault injection would otherwise cause).
func (c *Cluster) Run() (Metrics, error) {
	c.Sim.OnDeadlock(func(e *sim.DeadlockError) {
		// Annotate with the fault windows active at the instant of the wedge:
		// the usual cause of a kernel deadlock is a protocol wait that an
		// in-flight fault unbounded.
		if c.inj != nil {
			if active := c.inj.ActiveFaults(); len(active) > 0 {
				c.fail(fmt.Errorf("%w (active faults: %s)", e, active))
				return
			}
		}
		c.fail(e)
	})
	end := c.P.Warmup + c.P.Measure
	c.Sim.Run(end)
	m := c.collect()
	c.Sim.Shutdown()
	return m, c.runErr
}

// prewarm fills every node's buffer cache with its own partition, hottest
// tables first.
func (c *Cluster) prewarm() {
	order := []int{tpcc.TDistrict, tpcc.TWarehouse, tpcc.TStock, tpcc.TItem,
		tpcc.TNewOrder, tpcc.TOrder, tpcc.TCustomer, tpcc.TOrderLine, tpcc.THistory}
	full := make([]bool, len(c.nodes))
	warm := func(blk db.BlockID) {
		home := c.Cat.Home(blk)
		if full[home] {
			return
		}
		if !c.nodes[home].dbn.GCS.Prewarm(blk) {
			full[home] = true
		}
	}
	// Index leaves first — they are the hottest blocks of all.
	for _, ti := range order {
		t := c.Eng.Tables[ti]
		for b := int64(0); b < t.IndexLeafBlocks(); b++ {
			warm(t.IndexLeafBlock(b))
		}
	}
	for _, ti := range order {
		t := c.Eng.Tables[ti]
		for b := int64(0); b < t.Blocks(); b++ {
			warm(db.BlockID{Table: t.ID, Block: b})
		}
	}
}

// resetStats zeroes the measured counters at the warmup boundary.
func (c *Cluster) resetStats() {
	c.measuring = true
	now := c.Sim.Now()
	for i := range c.commits {
		c.commits[i] = 0
	}
	c.rollbacks, c.retries, c.failures = 0, 0, 0
	c.respTally = respTimes{}
	c.respHist = newRespHist()
	for _, n := range c.nodes {
		n.dbn.Stats = db.NodeStats{}
		n.dbn.GCS.Stats = db.GCSStats{}
		n.cpu.ResetStats(now)
		n.dbn.Cache.Hits, n.dbn.Cache.Misses = 0, 0
		n.initiator.Timeouts, n.initiator.IOErrors, n.initiator.Failed = 0, 0, 0
		n.dbn.Pager.DiskRetries, n.dbn.Pager.DiskFailures, n.dbn.Pager.WriteBackErrors = 0, 0, 0
		for _, d := range n.drives {
			d.FaultErrors = 0
		}
	}
	if c.san != nil {
		for _, d := range c.san.Drives {
			d.FaultErrors = 0
		}
	}
	c.Topo.Net.Drops, c.Topo.Net.Marks = 0, 0
	c.Topo.Net.FaultDrops, c.Topo.Net.CorruptDrops = 0, 0
	for i := range c.Topo.Net.DelayByClass {
		c.Topo.Net.DelayByClass[i] = netsim.DelayTally{}
	}
	c.Dom.Retransmits, c.Dom.Resets = 0, 0
	if c.ftp != nil {
		c.ftp.resetStats()
	}
}
